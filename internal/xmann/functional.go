package xmann

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/par"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

// TCPT is the functional model of one transposable crossbar-based
// processing tile (§III-A): a crossbar array that can apply inputs along
// its columns and read currents along rows (dot products, L1 norms) or
// apply inputs along rows and read along columns (soft read), plus the
// parallel rank-1 soft write.
//
// The memory vectors are stored as rows, one crosspoint per element, and —
// as in differentiable memories, whose contents live in [0, 1] after
// squashing — are assumed non-negative so that the all-ones input computes
// L1 norms (the hardware uses differential line pairs for signed values).
type TCPT struct {
	arr *crossbar.Array
}

// NewTCPT builds an ideal-device tile (functional verification focuses on
// the dataflow; device non-idealities are the domain of package crossbar).
// Soft writes use expected-pulse updates: X-MANN's writes carry full
// attention weights, far beyond the single-train stochastic-update range.
func NewTCPT(rows, cols int, rng *rngutil.Source) *TCPT {
	return NewTCPTWith(rows, cols, crossbar.Ideal(), crossbar.DefaultConfig(), rng)
}

// NewTCPTWith builds a tile on an explicit device model and array config —
// the entry point fault campaigns use to study X-MANN's soft read/write
// pipeline on imperfect arrays. The update mode is forced to
// expected-pulse, as X-MANN writes require.
func NewTCPTWith(rows, cols int, model crossbar.Model, cfg crossbar.Config, rng *rngutil.Source) *TCPT {
	cfg.Update = crossbar.UpdateExpected
	return &TCPT{arr: crossbar.NewArray(rows, cols, model, cfg, rng)}
}

// Array exposes the underlying crossbar so campaign engines can attach
// fault hooks to the tile.
func (t *TCPT) Array() *crossbar.Array { return t.arr }

// Program writes the memory contents (non-negative) into the tile,
// reporting write pulses used and the mean absolute residual so that
// programming under faults is observable.
func (t *TCPT) Program(m *tensor.Matrix) (pulses int, residual float64) {
	checkNonNegative(m)
	return t.arr.Program(m, 8000)
}

// ProgramVerify writes the memory contents with bounded retry and
// exponential pulse-budget backoff — the remediated write path of the
// fault-resilience study.
func (t *TCPT) ProgramVerify(m *tensor.Matrix, pol crossbar.ProgramPolicy) crossbar.ProgramReport {
	checkNonNegative(m)
	return t.arr.ProgramVerify(m, pol)
}

func checkNonNegative(m *tensor.Matrix) {
	for _, v := range m.Data {
		if v < 0 {
			panic("xmann: TCPT memory values must be non-negative")
		}
	}
}

// DotProducts applies the key along the columns and reads the per-row
// currents: dot(memory_i, key) for every stored vector, in one crossbar op.
func (t *TCPT) DotProducts(key tensor.Vector) tensor.Vector { return t.arr.Forward(key) }

// L1Norms applies the all-ones vector along the columns, yielding every
// row's L1 norm in a second crossbar op (§III-A2).
func (t *TCPT) L1Norms() tensor.Vector {
	ones := tensor.NewVector(t.arr.Cols())
	ones.Fill(1)
	return t.arr.Forward(ones)
}

// SoftRead applies the attention weights along the rows and reads columns:
// r = wᵀM in a single crossbar op (§III-A3).
func (t *TCPT) SoftRead(w tensor.Vector) tensor.Vector { return t.arr.Backward(w) }

// SoftWrite performs the additive soft write M += w ⊗ add as one parallel
// rank-1 update.
func (t *TCPT) SoftWrite(w, add tensor.Vector) { t.arr.Update(1, w, add) }

// Weights exposes the tile contents for verification.
func (t *TCPT) Weights() *tensor.Matrix { return t.arr.Weights() }

// DistributedMemory partitions an M×D differentiable memory row-wise across
// TCPTs, with the global reduce unit combining partial soft-read outputs —
// the X-MANN dataflow of Fig. 4.
type DistributedMemory struct {
	M, D     int
	TileRows int
	Tiles    []*TCPT
}

// MemoryOptions configures how a DistributedMemory's tiles are built and
// programmed; the zero value reproduces the legacy ideal-device behaviour.
type MemoryOptions struct {
	// Model is the device model (nil = crossbar.Ideal()).
	Model crossbar.Model
	// Cfg is the array config (nil = crossbar.DefaultConfig()); the update
	// mode is forced to expected-pulse either way.
	Cfg *crossbar.Config
	// Policy selects write-verify-retry programming (nil = the legacy
	// single-shot 8000-pulse budget).
	Policy *crossbar.ProgramPolicy
	// Attach, if non-nil, is called with each tile's array before
	// programming — the hook point campaign engines use.
	Attach func(*crossbar.Array)
}

// NewDistributedMemory programs the memory matrix across ceil(M/tileRows)
// ideal tiles.
func NewDistributedMemory(mem *tensor.Matrix, tileRows int, rng *rngutil.Source) *DistributedMemory {
	d, _ := NewDistributedMemoryOpts(mem, tileRows, MemoryOptions{}, rng)
	return d
}

// NewDistributedMemoryOpts programs the memory across tiles per opts and
// reports per-tile programming outcomes (residuals under faults are the
// observable the resilience harness asserts on).
func NewDistributedMemoryOpts(mem *tensor.Matrix, tileRows int, opts MemoryOptions, rng *rngutil.Source) (*DistributedMemory, []crossbar.ProgramReport) {
	if tileRows <= 0 {
		panic("xmann: tileRows must be positive")
	}
	model := opts.Model
	if model == nil {
		model = crossbar.Ideal()
	}
	cfg := crossbar.DefaultConfig()
	if opts.Cfg != nil {
		cfg = *opts.Cfg
	}
	d := &DistributedMemory{M: mem.Rows, D: mem.Cols, TileRows: tileRows}
	var reports []crossbar.ProgramReport
	for start := 0; start < mem.Rows; start += tileRows {
		end := start + tileRows
		if end > mem.Rows {
			end = mem.Rows
		}
		sub := tensor.NewMatrix(end-start, mem.Cols)
		copy(sub.Data, mem.Data[start*mem.Cols:end*mem.Cols])
		tile := NewTCPTWith(end-start, mem.Cols, model, cfg, rng.Child(fmt.Sprintf("tile%d", start)))
		if opts.Attach != nil {
			opts.Attach(tile.arr)
		}
		if opts.Policy != nil {
			reports = append(reports, tile.ProgramVerify(sub, *opts.Policy))
		} else {
			pulses, residual := tile.Program(sub)
			reports = append(reports, crossbar.ProgramReport{Rounds: 1, Pulses: pulses, Residual: residual})
		}
		d.Tiles = append(d.Tiles, tile)
	}
	return d, reports
}

// runTiles executes fn(ti) once per tile. Without fault hooks the tiles
// run concurrently on the par worker pool — in hardware every TCPT operates
// simultaneously (Fig. 4), and in the simulator each tile is an independent
// array with its own random stream, so cross-tile execution order cannot
// change any result. With a hook attached to any tile (campaign engines
// share hook state across tiles) they run sequentially in tile order, which
// by the same independence argument is bit-identical.
func (d *DistributedMemory) runTiles(fn func(ti int)) {
	for _, t := range d.Tiles {
		if t.arr.FaultHook() != nil {
			par.RunSeq(len(d.Tiles), fn)
			return
		}
	}
	par.Run(len(d.Tiles), fn)
}

// Similarity computes the attention distribution over all memory rows with
// the X-MANN similarity measure: softmax(β · dot_i / (‖m_i‖₁ + ε)),
// using two crossbar ops per tile plus the SFU math. Tiles run in parallel;
// scores are concatenated in tile order.
func (d *DistributedMemory) Similarity(key tensor.Vector, beta float64) tensor.Vector {
	parts := make([]tensor.Vector, len(d.Tiles))
	d.runTiles(func(ti int) {
		t := d.Tiles[ti]
		dots := t.DotProducts(key)
		norms := t.L1Norms()
		s := make(tensor.Vector, len(dots))
		for i := range dots {
			s[i] = dots[i] / (norms[i] + 1e-9)
		}
		parts[ti] = s
	})
	scores := make(tensor.Vector, 0, d.M)
	for _, p := range parts {
		scores = append(scores, p...)
	}
	return tensor.SoftmaxT(scores, beta)
}

// SoftRead computes r = wᵀM: each tile consumes its slice of w in parallel;
// the global reduce unit sums the partial outputs in ascending tile order
// (a fixed reduction order keeps the floating-point sum identical at every
// worker count).
func (d *DistributedMemory) SoftRead(w tensor.Vector) tensor.Vector {
	if len(w) != d.M {
		panic("xmann: weight length mismatch")
	}
	parts := make([]tensor.Vector, len(d.Tiles))
	d.runTiles(func(ti int) {
		t := d.Tiles[ti]
		start := ti * d.TileRows
		parts[ti] = t.SoftRead(w[start : start+t.arr.Rows()])
	})
	out := tensor.NewVector(d.D)
	for _, p := range parts {
		out.Add(p)
	}
	return out
}

// SoftWrite applies the additive write across tiles in parallel.
func (d *DistributedMemory) SoftWrite(w, add tensor.Vector) {
	if len(w) != d.M {
		panic("xmann: weight length mismatch")
	}
	d.runTiles(func(ti int) {
		t := d.Tiles[ti]
		start := ti * d.TileRows
		t.SoftWrite(w[start:start+t.arr.Rows()], add)
	})
}

// ReferenceSimilarity is the digital reference for Similarity, used in
// verification.
func ReferenceSimilarity(mem *tensor.Matrix, key tensor.Vector, beta float64) tensor.Vector {
	scores := make(tensor.Vector, mem.Rows)
	for i := 0; i < mem.Rows; i++ {
		row := mem.Row(i)
		scores[i] = tensor.Dot(row, key) / (row.Norm1() + 1e-9)
	}
	return tensor.SoftmaxT(scores, beta)
}
