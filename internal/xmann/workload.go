package xmann

import (
	"repro/internal/mann"
	"repro/internal/perfmodel"
)

// Workload describes one MANN benchmark at the granularity the accelerator
// and GPU models price: differentiable-memory geometry, per-step op mix,
// and controller size.
type Workload struct {
	Name string
	// MemRows × MemDim is the differentiable memory (M entries × D dims).
	MemRows, MemDim int
	// Steps is the number of controller time steps per inference.
	Steps int
	// Per-step op counts on the differentiable memory.
	SimsPerStep, ReadsPerStep, WritesPerStep int
	// CtrlMACs is the controller's multiply-accumulate work per step.
	CtrlMACs float64
}

// MemoryBytes reports the differentiable-memory footprint (fp32).
func (w Workload) MemoryBytes() int64 {
	return int64(w.MemRows) * int64(w.MemDim) * 4
}

// Suite returns the MANN benchmark suite with diverse memory capacities
// (§III-B): sequence tasks, few-shot classification, and large-memory
// question answering, spanning ~100 KB to ~0.5 GB of differentiable memory.
func Suite() []Workload {
	return []Workload{
		{
			Name:    "copy-seq",
			MemRows: 8192, MemDim: 32,
			Steps: 64, SimsPerStep: 1, ReadsPerStep: 1, WritesPerStep: 1,
			CtrlMACs: 4 * 100 * (32 + 100), // small LSTM controller
		},
		{
			Name:    "assoc-recall",
			MemRows: 16384, MemDim: 64,
			Steps: 48, SimsPerStep: 1, ReadsPerStep: 1, WritesPerStep: 1,
			CtrlMACs: 4 * 128 * (64 + 128),
		},
		{
			Name:    "omniglot-5w1s",
			MemRows: 65536, MemDim: 64,
			Steps: 16, SimsPerStep: 1, ReadsPerStep: 1, WritesPerStep: 1,
			CtrlMACs: 4 * 200 * (64 + 200),
		},
		{
			Name:    "omniglot-20w5s",
			MemRows: 262144, MemDim: 128,
			Steps: 24, SimsPerStep: 1, ReadsPerStep: 2, WritesPerStep: 1,
			CtrlMACs: 4 * 256 * (128 + 256),
		},
		{
			Name:    "bigmem-qa",
			MemRows: 1048576, MemDim: 128,
			Steps: 32, SimsPerStep: 2, ReadsPerStep: 2, WritesPerStep: 1,
			CtrlMACs: 4 * 512 * (128 + 512),
		},
	}
}

// InferenceCost prices one full inference of the workload on the X-MANN
// fabric.
func (a *Accelerator) InferenceCost(w Workload) *perfmodel.Cost {
	total := perfmodel.NewCost()
	for s := 0; s < w.Steps; s++ {
		for i := 0; i < w.SimsPerStep; i++ {
			total.Merge(a.SimilarityCost(w.MemRows, w.MemDim))
		}
		for i := 0; i < w.ReadsPerStep; i++ {
			total.Merge(a.SoftReadCost(w.MemRows, w.MemDim))
		}
		for i := 0; i < w.WritesPerStep; i++ {
			total.Merge(a.SoftWriteCost(w.MemRows, w.MemDim))
		}
		total.Merge(a.ControllerCost(w.CtrlMACs))
	}
	return total
}

// GPUInferenceCost prices the same inference on the GPU baseline: every
// memory op streams the M×D matrix between DRAM and the cores (soft writes
// stream it twice for read-modify-write), and each op is a kernel.
func GPUInferenceCost(w Workload, g perfmodel.GPU) *perfmodel.Cost {
	total := perfmodel.NewCost()
	mBytes := float64(w.MemoryBytes())
	for s := 0; s < w.Steps; s++ {
		for i := 0; i < w.SimsPerStep; i++ {
			// Dot products + norms + softmax: ~3 FLOPs/element plus M-sized
			// softmax; traffic is one full matrix scan.
			flops := 3*float64(w.MemRows)*float64(w.MemDim) + 4*float64(w.MemRows)
			total.Merge(g.Kernel(flops, mBytes))
		}
		for i := 0; i < w.ReadsPerStep; i++ {
			flops := 2 * float64(w.MemRows) * float64(w.MemDim)
			total.Merge(g.Kernel(flops, mBytes))
		}
		for i := 0; i < w.WritesPerStep; i++ {
			flops := 3 * float64(w.MemRows) * float64(w.MemDim)
			total.Merge(g.Kernel(flops, 2*mBytes)) // read-modify-write
		}
		// Controller: weights stay resident; compute-bound kernel.
		total.Merge(g.Kernel(2*w.CtrlMACs, 0))
	}
	return total
}

// Comparison is one row of the §III-B table.
type Comparison struct {
	Workload    Workload
	GPU, XMANN  *perfmodel.Cost
	Speedup     float64
	EnergyRatio float64
}

// Compare prices the whole suite on both architectures.
func Compare(suite []Workload, p Params, g perfmodel.GPU) []Comparison {
	acc := New(p)
	out := make([]Comparison, 0, len(suite))
	for _, w := range suite {
		gc := GPUInferenceCost(w, g)
		xc := acc.InferenceCost(w)
		out = append(out, Comparison{
			Workload:    w,
			GPU:         gc,
			XMANN:       xc,
			Speedup:     xc.Speedup(gc),
			EnergyRatio: xc.EnergyRatio(gc),
		})
	}
	return out
}

// WorkloadFromTrace converts measured differentiable-memory operation
// counts (from a functional run against mann.NTMMemory or the TCPT layer)
// into a priceable Workload, tying the functional and performance layers
// together: what gets priced is exactly what was executed.
func WorkloadFromTrace(name string, memRows, memDim, steps int, ops mann.MemOps, ctrlMACs float64) Workload {
	if steps <= 0 {
		steps = 1
	}
	perStep := func(total int64) int {
		n := int(total) / steps
		if n < 1 && total > 0 {
			n = 1
		}
		return n
	}
	return Workload{
		Name:    name,
		MemRows: memRows, MemDim: memDim,
		Steps:         steps,
		SimsPerStep:   perStep(ops.Similarities),
		ReadsPerStep:  perStep(ops.SoftReads),
		WritesPerStep: perStep(ops.SoftWrites),
		CtrlMACs:      ctrlMACs,
	}
}
