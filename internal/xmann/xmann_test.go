package xmann

import (
	"math"
	"testing"

	"repro/internal/mann"
	"repro/internal/perfmodel"
	"repro/internal/rngutil"
	"repro/internal/tensor"
)

func randomMemory(rows, cols int, seed uint64) *tensor.Matrix {
	rng := rngutil.New(seed)
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Uniform(0.05, 0.9) // non-negative, bounded
	}
	return m
}

func TestTCPTDotProducts(t *testing.T) {
	mem := randomMemory(8, 6, 1)
	tile := NewTCPT(8, 6, rngutil.New(2))
	tile.Program(mem)
	key := tensor.Vector{0.3, -0.2, 0.5, 0.1, -0.4, 0.2}
	dots := tile.DotProducts(key)
	w := tile.Weights()
	for i := 0; i < 8; i++ {
		want := tensor.Dot(w.Row(i), key)
		if math.Abs(dots[i]-want) > 1e-9 {
			t.Fatalf("dot %d: %v vs %v", i, dots[i], want)
		}
	}
}

func TestTCPTL1NormsViaOnesVector(t *testing.T) {
	mem := randomMemory(5, 7, 3)
	tile := NewTCPT(5, 7, rngutil.New(4))
	tile.Program(mem)
	norms := tile.L1Norms()
	w := tile.Weights()
	for i := 0; i < 5; i++ {
		want := w.Row(i).Norm1() // non-negative: row sum == L1 norm
		if math.Abs(norms[i]-want) > 1e-9 {
			t.Fatalf("norm %d: %v vs %v", i, norms[i], want)
		}
	}
}

func TestTCPTSoftReadTransposed(t *testing.T) {
	mem := randomMemory(6, 4, 5)
	tile := NewTCPT(6, 4, rngutil.New(6))
	tile.Program(mem)
	attn := tensor.Vector{0.1, 0.3, 0.05, 0.25, 0.2, 0.1}
	r := tile.SoftRead(attn)
	want := tile.Weights().MatVecT(attn)
	for j := range r {
		if math.Abs(r[j]-want[j]) > 1e-9 {
			t.Fatalf("soft read %d: %v vs %v", j, r[j], want[j])
		}
	}
}

func TestTCPTSoftWriteRankOne(t *testing.T) {
	mem := randomMemory(4, 4, 7)
	tile := NewTCPT(4, 4, rngutil.New(8))
	tile.Program(mem)
	before := tile.Weights()
	w := tensor.Vector{0.5, 0, 0, 0.25}
	add := tensor.Vector{0.1, 0, 0.2, 0}
	tile.SoftWrite(w, add)
	after := tile.Weights()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := before.At(i, j) + w[i]*add[j]
			// Stochastic pulses: expect within a few device steps.
			if math.Abs(after.At(i, j)-want) > 0.05 {
				t.Fatalf("soft write (%d,%d): %v vs %v", i, j, after.At(i, j), want)
			}
		}
	}
}

func TestTCPTRejectsNegativeMemory(t *testing.T) {
	tile := NewTCPT(2, 2, rngutil.New(9))
	m := tensor.NewMatrix(2, 2)
	m.Set(0, 0, -0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tile.Program(m)
}

func TestDistributedMemoryMatchesReference(t *testing.T) {
	mem := randomMemory(20, 8, 11) // 3 tiles at tileRows=8
	dm := NewDistributedMemory(mem, 8, rngutil.New(12))
	if len(dm.Tiles) != 3 {
		t.Fatalf("tile count = %d", len(dm.Tiles))
	}
	key := tensor.Vector{0.2, 0.4, -0.1, 0.3, 0.15, -0.2, 0.5, 0.1}
	got := dm.Similarity(key, 5)
	want := ReferenceSimilarity(mem, key, 5)
	if math.Abs(got.Sum()-1) > 1e-9 {
		t.Fatal("similarity must be a distribution")
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-3 {
			t.Fatalf("similarity %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Soft read across tiles must equal the reference wᵀM.
	r := dm.SoftRead(got)
	wantR := mem.MatVecT(want)
	for j := range r {
		if math.Abs(r[j]-wantR[j]) > 1e-2 {
			t.Fatalf("distributed soft read %d: %v vs %v", j, r[j], wantR[j])
		}
	}
}

func TestDistributedSoftWrite(t *testing.T) {
	mem := randomMemory(10, 4, 13)
	dm := NewDistributedMemory(mem, 4, rngutil.New(14))
	w := tensor.NewVector(10)
	w[7] = 0.5
	before := dm.Tiles[1].Weights().At(3, 2) // global row 7 lives in tile 1 row 3
	dm.SoftWrite(w, tensor.Vector{0, 0, 0.3, 0})
	after := dm.Tiles[1].Weights().At(3, 2)
	if math.Abs((after-before)-0.15) > 0.03 {
		t.Fatalf("distributed write delta %v, want 0.15", after-before)
	}
}

func TestTileGridGeometry(t *testing.T) {
	a := New(DefaultParams())
	rt, ct := a.tiles(1000, 300)
	if rt != 4 || ct != 2 {
		t.Fatalf("tiles(1000,300) = %d,%d", rt, ct)
	}
	rt, ct = a.tiles(1, 1)
	if rt != 1 || ct != 1 {
		t.Fatalf("tiles(1,1) = %d,%d", rt, ct)
	}
}

func TestCostMonotonicInMemorySize(t *testing.T) {
	a := New(DefaultParams())
	small := a.SimilarityCost(4096, 64)
	big := a.SimilarityCost(1<<20, 64)
	if big.Energy <= small.Energy || big.Latency <= small.Latency {
		t.Fatal("bigger memory must cost more")
	}
	sr := a.SoftReadCost(4096, 64)
	if sr.Energy <= 0 || sr.Latency <= 0 {
		t.Fatal("soft read cost must be positive")
	}
	sw := a.SoftWriteCost(4096, 64)
	if sw.Energy <= 0 || sw.Latency <= 0 {
		t.Fatal("soft write cost must be positive")
	}
}

func TestSoftWriteCheaperThanSimilarity(t *testing.T) {
	// The parallel rank-1 update needs no ADC scan: it should be the
	// cheapest memory op (the whole point of in-place updates).
	a := New(DefaultParams())
	if a.SoftWriteCost(65536, 128).Latency >= a.SimilarityCost(65536, 128).Latency {
		t.Fatal("soft write should be faster than similarity")
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite size %d", len(suite))
	}
	var prevBytes int64
	for _, w := range suite {
		if w.MemoryBytes() <= prevBytes {
			t.Fatal("suite should have increasing memory capacities")
		}
		prevBytes = w.MemoryBytes()
		if w.Steps <= 0 || w.SimsPerStep <= 0 {
			t.Fatalf("workload %s malformed", w.Name)
		}
	}
	// Diverse capacities: two orders of magnitude.
	if suite[len(suite)-1].MemoryBytes() < 100*suite[0].MemoryBytes() {
		t.Fatal("suite should span diverse memory capacities")
	}
}

// T1: the suite-level speedup and energy-reduction ratios land in the
// paper's reported bands (§III-B: 23.7×–45.7× and 75.1×–267.1×).
func TestT1SuiteRatiosInBand(t *testing.T) {
	for _, c := range Compare(Suite(), DefaultParams(), perfmodel.DefaultGPU()) {
		if c.Speedup < 20 || c.Speedup > 50 {
			t.Errorf("%s: speedup %.1fx outside the 23.7–45.7x band", c.Workload.Name, c.Speedup)
		}
		if c.EnergyRatio < 75 || c.EnergyRatio > 280 {
			t.Errorf("%s: energy ratio %.1fx outside the 75.1–267.1x band", c.Workload.Name, c.EnergyRatio)
		}
	}
}

func TestGPUCostDominatedByMemoryTraffic(t *testing.T) {
	g := perfmodel.DefaultGPU()
	w := Suite()[4] // bigmem-qa
	c := GPUInferenceCost(w, g)
	// Pure streaming time of all per-step scans is a lower bound.
	scans := float64(w.Steps) * float64(w.SimsPerStep+w.ReadsPerStep+2*w.WritesPerStep)
	lower := scans * float64(w.MemoryBytes()) / g.MemBW
	if c.Latency < lower {
		t.Fatalf("GPU latency %v below streaming bound %v", c.Latency, lower)
	}
}

func TestMoreParallelTilesFaster(t *testing.T) {
	p := DefaultParams()
	slow := New(p).InferenceCost(Suite()[4])
	p.MaxParallelTiles *= 8
	fast := New(p).InferenceCost(Suite()[4])
	if fast.Latency >= slow.Latency {
		t.Fatal("raising tile parallelism must reduce latency")
	}
	if math.Abs(fast.Energy-slow.Energy)/slow.Energy > 1e-9 {
		t.Fatal("tile parallelism must not change energy")
	}
}

func TestWorkloadFromTrace(t *testing.T) {
	// Run the functional copy machine and price exactly what it executed.
	cm := mann.NewCopyMachine(64, 32)
	seq := make([]tensor.Vector, 32)
	for i := range seq {
		seq[i] = tensor.NewVector(32)
	}
	cm.Run(seq)
	ops := cm.Mem.Ops
	w := WorkloadFromTrace("copy-traced", 64, 32, len(seq), ops, 1000)
	if w.ReadsPerStep < 1 || w.WritesPerStep < 1 {
		t.Fatalf("trace-derived workload lost ops: %+v", w)
	}
	cost := New(DefaultParams()).InferenceCost(w)
	if cost.Latency <= 0 || cost.Energy <= 0 {
		t.Fatal("trace-derived workload must be priceable")
	}
	// Zero/empty traces degrade gracefully.
	w0 := WorkloadFromTrace("empty", 8, 8, 0, mann.MemOps{}, 0)
	if w0.Steps != 1 || w0.SimsPerStep != 0 {
		t.Fatalf("empty trace workload wrong: %+v", w0)
	}
}
